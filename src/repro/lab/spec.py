"""RunSpec: one simulation, fully described, with a stable content hash.

A :class:`RunSpec` is the unit of work of the lab: kernel name, workload
parameters, the full :class:`~repro.sim.config.GPUConfig`, an optional
seed, and whether to run post-execution validation.  Two specs that
describe the same simulation hash identically, so the result cache can
recognize repeated work across processes and CLI invocations.

Hashing is content-addressed: the spec is serialized to canonical JSON
(sorted keys, nested config dataclasses expanded) and digested with
SHA-256.  Anything that can change the simulation's outcome must be in
the hash; presentation-only fields (``label``) are excluded.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.analysis.sanitizer import SanitizerConfig
from repro.obs import ObsConfig
from repro.sim.config import (BOWSConfig, CacheConfig, DDOSConfig, GPUConfig,
                              PerturbConfig)


def config_to_dict(config: GPUConfig) -> Dict[str, Any]:
    """Serialize a :class:`GPUConfig` (and nested configs) to plain data."""
    return dataclasses.asdict(config)


def config_from_dict(data: Dict[str, Any]) -> GPUConfig:
    """Rebuild a :class:`GPUConfig` from :func:`config_to_dict` output."""
    data = dict(data)
    data["l1d"] = CacheConfig(**data["l1d"])
    data["l2"] = CacheConfig(**data["l2"])
    data["bows"] = BOWSConfig(**data["bows"]) if data.get("bows") else None
    data["ddos"] = DDOSConfig(**data["ddos"]) if data.get("ddos") else None
    if data.get("perturb"):
        data["perturb"] = PerturbConfig(**data["perturb"])
    else:
        data.pop("perturb", None)
    return GPUConfig(**data)


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=_json_default)


def _json_default(value: Any):
    # numpy scalars leak into stats/params occasionally; store them as
    # plain numbers rather than failing the dump.
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"not JSON-serializable: {value!r}")


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation: kernel + params + config (+ seed)."""

    kernel: str
    config: GPUConfig
    params: Dict[str, int] = field(default_factory=dict)
    #: Folded into the workload build as a ``seed=`` parameter when set.
    seed: Optional[int] = None
    #: Run the workload's functional validation after simulation.
    validate: bool = True
    #: Execution engine (``"fast"``/``"reference"``).  Part of the hash:
    #: the engines are bitwise-equivalent by contract, but cache entries
    #: must say which engine actually produced them so equivalence can be
    #: *checked* (the benchmark harness runs both and diffs).
    engine: str = "fast"
    #: Observability collection for this run (:class:`repro.obs.ObsConfig`).
    #: Collection never changes the simulation outcome, but it changes
    #: what the cached :class:`~repro.lab.results.RunResult` carries, so
    #: a set ``obs`` IS part of the hash (None keeps pre-obs hashes).
    obs: Optional[ObsConfig] = None
    #: Dynamic sanitizer for this run
    #: (:class:`repro.analysis.SanitizerConfig`).  Like ``obs``: never
    #: changes the outcome, but changes what the cached result carries,
    #: so a set ``sanitize`` IS part of the hash (None keeps old hashes).
    sanitize: Optional["SanitizerConfig"] = None
    #: Display name for progress/manifests; NOT part of the hash.
    label: Optional[str] = None

    def build_params(self) -> Dict[str, int]:
        """Workload-builder keyword arguments (seed folded in)."""
        params = dict(self.params)
        if self.seed is not None:
            params["seed"] = self.seed
        return params

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "kernel": self.kernel,
            "config": config_to_dict(self.config),
            "params": dict(self.params),
            "seed": self.seed,
            "validate": self.validate,
            "engine": self.engine,
        }
        # Included only when set so every pre-obs spec hash is unchanged.
        if self.obs is not None:
            data["obs"] = self.obs.to_dict()
        if self.sanitize is not None:
            data["sanitize"] = self.sanitize.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  label: Optional[str] = None) -> "RunSpec":
        return cls(
            kernel=data["kernel"],
            config=config_from_dict(data["config"]),
            params=dict(data.get("params", {})),
            seed=data.get("seed"),
            validate=data.get("validate", True),
            engine=data.get("engine", "fast"),
            obs=(ObsConfig.from_dict(data["obs"])
                 if data.get("obs") else None),
            sanitize=(SanitizerConfig.from_dict(data["sanitize"])
                      if data.get("sanitize") else None),
            label=label,
        )

    def content_hash(self) -> str:
        """Stable SHA-256 over everything that affects the simulation."""
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()

    @property
    def display(self) -> str:
        return self.label or f"{self.kernel}:{self.content_hash()[:10]}"
