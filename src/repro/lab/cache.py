"""On-disk content-addressed result cache (durable, concurrency-safe).

Entries live under ``<cache_dir>/<code_fingerprint>/<spec_hash>.json``.
The spec hash covers everything that determines a simulation's outcome
(kernel, params, seed, full GPU config); the code fingerprint covers the
simulator itself — a SHA-256 over every ``.py`` file of the ``repro``
package — so editing any simulator source invalidates prior results
wholesale rather than serving stale numbers.

Durability guarantees (see ``docs/robustness.md``):

* **Atomic writes** — every entry goes through temp file +
  ``os.replace``, so concurrent sweep workers, parallel pytest sessions,
  and multiple Runners can share one cache directory without ever
  exposing a half-written entry.
* **Checksummed reads** — version-2 entries embed a SHA-256 over the
  canonical JSON body; :meth:`ResultCache.get` verifies it and treats
  any mismatch (torn write, bit rot, hand-editing) as a miss.  Never a
  crash, never a silently wrong result.
* **Quarantine** — a corrupt entry is moved to
  ``<cache_dir>/quarantine/`` rather than deleted or overwritten in
  place, preserving the evidence; :meth:`ResultCache.verify` (surfaced
  as ``repro cache verify [--repair]``) scans the whole store.
* **Multi-file mutations lock** — quarantine moves, repair scans, and
  ``clear`` hold an advisory :class:`~repro.lab.locking.FileLock` on
  ``<cache_dir>/.lock``, so two processes never fight over the same
  files (single-entry put/get need no lock thanks to the atomic
  rename).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.lab.locking import FileLock, LockTimeout
from repro.lab.results import RunResult
from repro.lab.spec import RunSpec, _json_default

#: Default cache location (relative to the current working directory);
#: override with the REPRO_LAB_CACHE_DIR environment variable.
DEFAULT_CACHE_DIR = ".lab_cache"

#: Entry payload schema version.  v2 added the content checksum; v1
#: entries (no checksum) are still readable but report ``"unchecked"``
#: integrity in :meth:`ResultCache.verify`.
ENTRY_VERSION = 2

#: Subdirectory corrupt entries are moved into (never deleted).
QUARANTINE_DIR = "quarantine"

_fingerprint_memo: Optional[str] = None


def _canonical_body(body) -> bytes:
    """Deterministic JSON serialization the checksum is computed over.

    Written entries embed exactly this text, so re-serializing the
    parsed body on read reproduces the checksummed bytes bit-for-bit.
    """
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), default=_json_default,
    ).encode("utf-8")


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_LAB_CACHE_DIR", DEFAULT_CACHE_DIR))


def code_fingerprint() -> str:
    """SHA-256 over the sources of the ``repro`` package (memoized)."""
    global _fingerprint_memo
    if _fingerprint_memo is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_memo = digest.hexdigest()
    return _fingerprint_memo


@dataclass
class CacheStats:
    """Summary for ``repro cache stats``."""

    directory: str
    entries: int
    size_bytes: int
    current_entries: int
    stale_entries: int
    fingerprint: str
    quarantined_entries: int = 0

    def render(self) -> str:
        mib = self.size_bytes / (1024 * 1024)
        text = (
            f"cache directory : {self.directory}\n"
            f"entries         : {self.entries} ({mib:.2f} MiB)\n"
            f"  current code  : {self.current_entries}\n"
            f"  stale code    : {self.stale_entries}\n"
            f"code fingerprint: {self.fingerprint[:16]}"
        )
        if self.quarantined_entries:
            text += f"\nquarantined     : {self.quarantined_entries}"
        return text


@dataclass
class EntryReport:
    """Integrity report for one cache entry (``repro cache verify``)."""

    path: str
    spec_hash: str
    size_bytes: int
    #: ``ok`` | ``corrupt`` | ``unchecked`` (pre-checksum v1 entry) |
    #: ``stale`` (different code fingerprint; not integrity-checked).
    status: str
    detail: str = ""


@dataclass
class VerifyReport:
    """Whole-store integrity scan (``repro cache verify [--repair]``)."""

    directory: str
    entries: List[EntryReport] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)

    @property
    def corrupt(self) -> List[EntryReport]:
        return [e for e in self.entries if e.status == "corrupt"]

    @property
    def ok(self) -> bool:
        return not self.corrupt

    def render(self, verbose: bool = False) -> str:
        lines = [f"cache directory : {self.directory}"]
        counts = {}
        for entry in self.entries:
            counts[entry.status] = counts.get(entry.status, 0) + 1
        summary = ", ".join(
            f"{n} {status}" for status, n in sorted(counts.items())
        ) or "empty"
        lines.append(f"scanned         : {len(self.entries)} ({summary})")
        if verbose:
            for entry in self.entries:
                detail = f"  {entry.detail}" if entry.detail else ""
                lines.append(
                    f"  {entry.status:9s} {entry.size_bytes:>10,} B  "
                    f"{entry.spec_hash[:16]}{detail}"
                )
        else:
            for entry in self.corrupt:
                lines.append(f"  CORRUPT {entry.path}: {entry.detail}")
        for moved in self.quarantined:
            lines.append(f"  quarantined -> {moved}")
        return "\n".join(lines)


class ResultCache:
    """Content-addressed store of :class:`RunResult` records.

    ``bus`` is an optional :class:`repro.obs.EventBus`: when attached,
    quarantine actions publish
    :class:`~repro.obs.events.CorruptEntryQuarantined` events.
    """

    def __init__(self, directory=None,
                 fingerprint: Optional[str] = None, bus=None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self._fingerprint = fingerprint
        self.bus = bus

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = code_fingerprint()
        return self._fingerprint

    def _entry_path(self, spec_hash: str) -> Path:
        return self.directory / self.fingerprint[:16] / f"{spec_hash}.json"

    def lock(self, timeout_s: float = 30.0) -> FileLock:
        """The store-wide advisory lock guarding multi-file mutations."""
        return FileLock(self.directory / ".lock", timeout_s=timeout_s)

    # ------------------------------------------------------------------
    # Entry integrity

    @staticmethod
    def _check_entry(payload) -> Optional[str]:
        """Return None when ``payload`` is intact, else a defect string."""
        if not isinstance(payload, dict) or "result" not in payload:
            return "entry is not a result record"
        checksum = payload.get("checksum")
        if checksum is None:
            if payload.get("version", 1) >= 2:
                return "v2 entry is missing its checksum"
            return None  # v1 (pre-checksum) entry: readable, unchecked
        body = {k: v for k, v in payload.items()
                if k not in ("checksum", "version")}
        actual = hashlib.sha256(_canonical_body(body)).hexdigest()
        if actual != checksum:
            return "checksum mismatch (torn write or modified entry)"
        return None

    def _quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a corrupt entry aside (atomic; races resolve silently)."""
        dest_dir = self.directory / QUARANTINE_DIR
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = dest_dir / f"{path.parent.name}__{path.name}"
        try:
            with self.lock():
                os.replace(path, dest)
        except (OSError, LockTimeout):
            return None  # another process already moved/removed it
        if self.bus is not None:
            from repro.obs.events import CorruptEntryQuarantined

            self.bus.publish(CorruptEntryQuarantined(
                cycle=0, path=str(path), reason=reason,
            ))
        return dest

    # ------------------------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """Return the cached result for ``spec``, or ``None`` on a miss.

        A corrupt or unreadable entry counts as a miss — never a crash,
        never a silently wrong result.  Entries failing their content
        checksum (or unparseable) are quarantined so the defect stays
        diagnosable and the slot is free for the fresh recompute.
        """
        path = self._entry_path(spec.content_hash())
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            return None  # plain miss
        except ValueError:
            self._quarantine(path, "entry is not valid JSON")
            return None
        defect = self._check_entry(payload)
        if defect is not None:
            self._quarantine(path, defect)
            return None
        try:
            result = RunResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, f"result payload malformed: {exc}")
            return None
        result.from_cache = True
        result.label = spec.label
        return result

    def put(self, spec: RunSpec, result: RunResult) -> Path:
        """Persist ``result`` under the spec's content hash (atomic,
        checksummed: readers verify the body byte-for-byte)."""
        path = self._entry_path(spec.content_hash())
        path.parent.mkdir(parents=True, exist_ok=True)
        body = {
            "fingerprint": self.fingerprint,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        canonical = _canonical_body(body)
        payload = dict(json.loads(canonical))
        payload["version"] = ENTRY_VERSION
        payload["checksum"] = hashlib.sha256(canonical).hexdigest()
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, default=_json_default)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    # ------------------------------------------------------------------

    def verify(self, repair: bool = False) -> VerifyReport:
        """Scan every entry's integrity; optionally quarantine failures.

        ``repair=True`` moves corrupt entries to the quarantine
        directory (they will be recomputed on next use); without it the
        scan is read-only.  Stale-fingerprint entries are reported but
        not checksum-verified — they can never be served anyway.
        """
        report = VerifyReport(directory=str(self.directory))
        if not self.directory.is_dir():
            return report
        current_dir = self.fingerprint[:16]
        for path in sorted(self.directory.rglob("*.json")):
            if path.parent.name == QUARANTINE_DIR:
                continue
            spec_hash = path.stem
            size = path.stat().st_size
            if path.parent.name != current_dir:
                report.entries.append(EntryReport(
                    path=str(path), spec_hash=spec_hash,
                    size_bytes=size, status="stale",
                ))
                continue
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                defect = self._check_entry(payload)
            except ValueError as exc:
                defect = f"entry is not valid JSON: {exc}"
            except OSError as exc:
                defect = f"unreadable: {exc}"
            if defect is None:
                version = payload.get("version", 1)
                status = "ok" if version >= 2 else "unchecked"
                report.entries.append(EntryReport(
                    path=str(path), spec_hash=spec_hash,
                    size_bytes=size, status=status,
                ))
                continue
            report.entries.append(EntryReport(
                path=str(path), spec_hash=spec_hash, size_bytes=size,
                status="corrupt", detail=defect,
            ))
            if repair:
                moved = self._quarantine(path, defect)
                if moved is not None:
                    report.quarantined.append(str(moved))
        return report

    def stats(self) -> CacheStats:
        entries = size = current = stale = quarantined = 0
        current_dir = self.fingerprint[:16]
        if self.directory.is_dir():
            for path in self.directory.rglob("*.json"):
                if path.parent.name == QUARANTINE_DIR:
                    quarantined += 1
                    continue
                entries += 1
                size += path.stat().st_size
                if path.parent.name == current_dir:
                    current += 1
                else:
                    stale += 1
        return CacheStats(
            directory=str(self.directory),
            entries=entries,
            size_bytes=size,
            current_entries=current,
            stale_entries=stale,
            fingerprint=self.fingerprint,
            quarantined_entries=quarantined,
        )

    def clear(self, stale_only: bool = False) -> int:
        """Delete cached entries; returns how many were removed."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        current_dir = self.fingerprint[:16]
        with self.lock():
            for child in list(self.directory.iterdir()):
                if not child.is_dir() or child.name == QUARANTINE_DIR:
                    continue
                if stale_only and child.name == current_dir:
                    continue
                removed += sum(1 for _ in child.glob("*.json"))
                shutil.rmtree(child, ignore_errors=True)
        return removed
