"""On-disk content-addressed result cache.

Entries live under ``<cache_dir>/<code_fingerprint>/<spec_hash>.json``.
The spec hash covers everything that determines a simulation's outcome
(kernel, params, seed, full GPU config); the code fingerprint covers the
simulator itself — a SHA-256 over every ``.py`` file of the ``repro``
package — so editing any simulator source invalidates prior results
wholesale rather than serving stale numbers.

Writes are atomic (temp file + ``os.replace``) so concurrent sweep
workers and parallel pytest sessions can share one cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.lab.results import RunResult
from repro.lab.spec import RunSpec, _json_default

#: Default cache location (relative to the current working directory);
#: override with the REPRO_LAB_CACHE_DIR environment variable.
DEFAULT_CACHE_DIR = ".lab_cache"

_fingerprint_memo: Optional[str] = None


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_LAB_CACHE_DIR", DEFAULT_CACHE_DIR))


def code_fingerprint() -> str:
    """SHA-256 over the sources of the ``repro`` package (memoized)."""
    global _fingerprint_memo
    if _fingerprint_memo is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint_memo = digest.hexdigest()
    return _fingerprint_memo


@dataclass
class CacheStats:
    """Summary for ``repro cache stats``."""

    directory: str
    entries: int
    size_bytes: int
    current_entries: int
    stale_entries: int
    fingerprint: str

    def render(self) -> str:
        mib = self.size_bytes / (1024 * 1024)
        return (
            f"cache directory : {self.directory}\n"
            f"entries         : {self.entries} ({mib:.2f} MiB)\n"
            f"  current code  : {self.current_entries}\n"
            f"  stale code    : {self.stale_entries}\n"
            f"code fingerprint: {self.fingerprint[:16]}"
        )


class ResultCache:
    """Content-addressed store of :class:`RunResult` records."""

    def __init__(self, directory=None,
                 fingerprint: Optional[str] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self._fingerprint = fingerprint

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = code_fingerprint()
        return self._fingerprint

    def _entry_path(self, spec_hash: str) -> Path:
        return self.directory / self.fingerprint[:16] / f"{spec_hash}.json"

    # ------------------------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """Return the cached result for ``spec``, or ``None`` on a miss.

        A corrupt or unreadable entry counts as a miss (it will be
        overwritten by the fresh run), never as an error.
        """
        path = self._entry_path(spec.content_hash())
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = RunResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        result.from_cache = True
        result.label = spec.label
        return result

    def put(self, spec: RunSpec, result: RunResult) -> Path:
        """Persist ``result`` under the spec's content hash (atomic)."""
        path = self._entry_path(spec.content_hash())
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": 1,
            "fingerprint": self.fingerprint,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, default=_json_default)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        entries = size = current = stale = 0
        current_dir = self.fingerprint[:16]
        if self.directory.is_dir():
            for path in self.directory.rglob("*.json"):
                entries += 1
                size += path.stat().st_size
                if path.parent.name == current_dir:
                    current += 1
                else:
                    stale += 1
        return CacheStats(
            directory=str(self.directory),
            entries=entries,
            size_bytes=size,
            current_entries=current,
            stale_entries=stale,
            fingerprint=self.fingerprint,
        )

    def clear(self, stale_only: bool = False) -> int:
        """Delete cached entries; returns how many were removed."""
        if not self.directory.is_dir():
            return 0
        removed = 0
        current_dir = self.fingerprint[:16]
        for child in list(self.directory.iterdir()):
            if not child.is_dir():
                continue
            if stale_only and child.name == current_dir:
                continue
            removed += sum(1 for _ in child.glob("*.json"))
            shutil.rmtree(child, ignore_errors=True)
        return removed
