"""Dynamic synchronization sanitizer: opt-in execution-time checking.

``simulate(..., sanitize=True)`` threads a :class:`Sanitizer` through
the SMs.  It is a pure observer — it never perturbs simulated state, so
sanitizer-on runs produce bitwise-identical stats to sanitizer-off runs
(enforced by the golden-equivalence suite) — and it is pre-bound like
the obs emitters: when off, the only cost on the hot path is one
``is not None`` test per memory/barrier instruction.

Checks (``SAN*`` ids; static counterparts are ``docs/analysis.md``):

========  ========  ====================================================
id        severity  finding
========  ========  ====================================================
SAN001    error     write-write data race on a lock-protected address
SAN002    error     ``bar.sync`` executed by a divergent warp
SAN003    error     ``!lock_release`` of a lock this lane does not hold
SAN004    warning   plain (non-atomic) store to a known lock word
========  ========  ====================================================

Race detection is Eraser-style lockset checking with a barrier-epoch
happens-before refinement: two writes to the same address by different
threads conflict unless they hold a common lock, are separated by a
``bar.sync`` release in the same CTA, or at least one is atomic.  Only
*write-write* conflicts are reported by default — single-writer
publish/poll (``membar`` + ``!wait_branch`` flag polling, the NW and
BH-ST idiom) is how this machine is meant to synchronize, so racy reads
are opt-in (``SanitizerConfig(track_reads=True)``) and reported as
SAN001 with ``detail.kind = "read-write"``.

The sanitizer also installs a :class:`GlobalMemory` write hook to count
every functional write, reported as coverage (``raw_writes`` vs
``checked_writes``), and emits a ``sanitizer`` obs event per diagnostic
when an event bus is attached so findings land in
``HangReport.events_tail``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic

__all__ = ["Sanitizer", "SanitizerConfig", "as_sanitizer"]

#: Global thread identity: (sm, cta, warp-in-cta, lane).
_Thread = Tuple[int, int, int, int]

_EMPTY: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class SanitizerConfig:
    """Knobs for the dynamic sanitizer (hashable; rides RunSpec)."""

    #: Stop recording new diagnostics after this many distinct findings.
    max_diagnostics: int = 200
    #: Also check read accesses against the write shadow (reports the
    #: intentional publish/poll idiom too — debugging aid, not CI).
    track_reads: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_diagnostics": self.max_diagnostics,
            "track_reads": self.track_reads,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SanitizerConfig":
        return cls(
            max_diagnostics=data.get("max_diagnostics", 200),
            track_reads=data.get("track_reads", False),
        )


class _Shadow:
    """Last-write shadow state for one address."""

    __slots__ = ("thread", "cta", "epoch", "locks", "pc", "cycle", "atomic")

    def __init__(self, thread: _Thread, cta: int, epoch: int,
                 locks: FrozenSet[int], pc: int, cycle: int,
                 atomic: bool) -> None:
        self.thread = thread
        self.cta = cta
        self.epoch = epoch
        self.locks = locks
        self.pc = pc
        self.cycle = cycle
        self.atomic = atomic


class Sanitizer:
    """Execution-time synchronization checker (attach via ``simulate``)."""

    def __init__(self, config: Optional[SanitizerConfig] = None,
                 bus=None) -> None:
        self.config = config or SanitizerConfig()
        self.kernel = ""
        self.diagnostics: List[Diagnostic] = []
        #: Occurrences per finding key (diagnostics are deduplicated).
        self.counts: Dict[Tuple[str, int], int] = {}
        self.counters: Dict[str, int] = {
            "raw_writes": 0,
            "checked_writes": 0,
            "checked_reads": 0,
            "lock_acquires": 0,
            "lock_releases": 0,
            "barrier_epochs": 0,
        }
        self._bus = bus
        self._emit = None
        #: Locks held per thread: thread -> {lock addr: acquire pc}.
        self._held: Dict[_Thread, Dict[int, int]] = {}
        #: Addresses ever contended as locks (CAS !lock_try targets).
        self._lock_words: Set[int] = set()
        self._shadow: Dict[int, _Shadow] = {}
        #: Barrier epoch per CTA (bumped on every barrier release).
        self._epochs: Dict[int, int] = {}
        self._full = False

    # -- lifecycle -------------------------------------------------------

    def begin_run(self, kernel: str, bus=None) -> None:
        self.kernel = kernel
        if bus is not None:
            self._bus = bus
        if self._bus is not None:
            from repro.obs.events import SanitizerFinding

            self._emit = self._bus.emitter(SanitizerFinding)

    def attach_memory(self, memory) -> None:
        """Install the :class:`GlobalMemory` write hook (coverage)."""
        memory.write_hook = self._on_raw_write

    def __getstate__(self):
        """Checkpointing: drop the emitter closure (``_bus`` itself is a
        picklable :class:`EventBus` and rides along; the memory write
        hook is a bound method and pickles with shared identity)."""
        state = self.__dict__.copy()
        state["_emit"] = None
        return state

    def _rebind_events(self) -> None:
        if self._bus is not None:
            from repro.obs.events import SanitizerFinding

            self._emit = self._bus.emitter(SanitizerFinding)

    def _on_raw_write(self, n_words: int) -> None:
        self.counters["raw_writes"] += n_words

    # -- reporting -------------------------------------------------------

    def _report(self, diag_id: str, severity: str, pc: int, message: str,
                hint: str, warp: int, lane: Optional[int], cycle: int,
                **detail) -> None:
        key = (diag_id, pc)
        self.counts[key] = self.counts.get(key, 0) + 1
        if self.counts[key] > 1 or self._full:
            return
        if len(self.diagnostics) + 1 >= self.config.max_diagnostics:
            self._full = True
        self.diagnostics.append(Diagnostic(
            id=diag_id, severity=severity, kernel=self.kernel, pc=pc,
            message=message, hint=hint, warp=warp, lane=lane, cycle=cycle,
            detail=detail,
        ))
        if self._emit is not None:
            self._emit(cycle=cycle, diag_id=diag_id, severity=severity,
                       pc=pc, warp_slot=warp)

    # -- hooks (called from SM execute paths, both engines) --------------

    def note_atomic(self, sm_id: int, cta: int, warp_in_cta: int, lane: int,
                    addr: int, pc: int, cycle: int, *, lock_try: bool,
                    success: bool, release: bool, wrote: bool) -> None:
        thread = (sm_id, cta, warp_in_cta, lane)
        if lock_try:
            self._lock_words.add(addr)
            self._shadow.pop(addr, None)
            if success:
                self.counters["lock_acquires"] += 1
                self._held.setdefault(thread, {})[addr] = pc
        if release:
            self.counters["lock_releases"] += 1
            held = self._held.get(thread)
            if held is None or addr not in held:
                self._report(
                    "SAN003", "error", pc,
                    f"release of lock @{addr} that this lane does not "
                    f"hold",
                    "a release must follow this lane's own successful "
                    "!lock_try acquire of the same address (double "
                    "release, or release on the failure path)",
                    warp_in_cta, lane, cycle, addr=addr, sm=sm_id,
                    cta=cta,
                )
            else:
                del held[addr]
        elif wrote and not lock_try and addr not in self._lock_words:
            # Unconditional RMW atomics are synchronized accesses; they
            # update the shadow so plain writes racing them are caught.
            self._update_shadow(thread, cta, addr, pc, cycle, atomic=True)

    def note_store(self, sm_id: int, cta: int, warp_in_cta: int,
                   lanes, addrs, pc: int, cycle: int, *,
                   release: bool) -> None:
        for lane, addr in zip(lanes, addrs):
            lane = int(lane)
            addr = int(addr)
            thread = (sm_id, cta, warp_in_cta, lane)
            if release:
                # Plain-store lock release (paper-idiomatic on pre-Volta).
                self.counters["lock_releases"] += 1
                held = self._held.get(thread)
                if held is None or addr not in held:
                    self._report(
                        "SAN003", "error", pc,
                        f"release of lock @{addr} that this lane does "
                        f"not hold",
                        "a release must follow this lane's own "
                        "successful !lock_try acquire of the same "
                        "address",
                        warp_in_cta, lane, cycle, addr=addr, sm=sm_id,
                        cta=cta,
                    )
                else:
                    del held[addr]
                continue
            if addr in self._lock_words:
                self._report(
                    "SAN004", "warning", pc,
                    f"plain store to lock word @{addr}",
                    "lock words should only be written by atomics (or a "
                    "store annotated !lock_release)",
                    warp_in_cta, lane, cycle, addr=addr,
                )
                continue
            self.counters["checked_writes"] += 1
            self._update_shadow(thread, cta, addr, pc, cycle, atomic=False)

    def note_load(self, sm_id: int, cta: int, warp_in_cta: int,
                  lanes, addrs, pc: int, cycle: int) -> None:
        if not self.config.track_reads:
            return
        epoch_cache = self._epochs
        for lane, addr in zip(lanes, addrs):
            addr = int(addr)
            prev = self._shadow.get(addr)
            if prev is None:
                continue
            lane = int(lane)
            thread = (sm_id, cta, warp_in_cta, lane)
            if prev.thread == thread or prev.atomic:
                continue
            self.counters["checked_reads"] += 1
            if prev.cta == cta and epoch_cache.get(cta, 0) > prev.epoch:
                continue
            locks = self._locks_of(thread)
            if locks & prev.locks:
                continue
            if not locks and not prev.locks:
                continue
            self._report(
                "SAN001", "error", pc,
                f"read of @{addr} races with the write at pc {prev.pc} "
                f"(cycle {prev.cycle})",
                "synchronize the read with the writer's lock, or accept "
                "it as an intentional poll (this check is opt-in)",
                warp_in_cta, lane, cycle, addr=addr, kind="read-write",
                other_pc=prev.pc,
            )

    def _locks_of(self, thread: _Thread) -> FrozenSet[int]:
        held = self._held.get(thread)
        return frozenset(held) if held else _EMPTY

    def _update_shadow(self, thread: _Thread, cta: int, addr: int,
                       pc: int, cycle: int, *, atomic: bool) -> None:
        epoch = self._epochs.get(cta, 0)
        locks = self._locks_of(thread)
        prev = self._shadow.get(addr)
        if (prev is not None and prev.thread != thread
                and not atomic and not prev.atomic
                and not (prev.cta == cta and epoch > prev.epoch)
                and not (locks & prev.locks)
                and (locks or prev.locks)):
            self._report(
                "SAN001", "error", pc,
                f"write-write race on lock-protected address @{addr}: "
                f"conflicts with the write at pc {prev.pc} "
                f"(cycle {prev.cycle})",
                "both writers must hold a common lock, or be separated "
                "by a bar.sync in the same CTA",
                thread[2], thread[3], cycle, addr=addr,
                kind="write-write", other_pc=prev.pc,
                locks=sorted(locks), other_locks=sorted(prev.locks),
            )
        self._shadow[addr] = _Shadow(thread, cta, epoch, locks, pc,
                                     cycle, atomic)

    def note_barrier(self, sm_id: int, cta: int, warp_in_cta: int,
                     pc: int, cycle: int, stack_depth: int) -> None:
        if stack_depth > 1:
            self._report(
                "SAN002", "error", pc,
                "bar.sync executed by a divergent warp (SIMT stack depth "
                f"{stack_depth})",
                "a partial warp at a barrier deadlocks the CTA on "
                "stack-based SIMT hardware; reconverge before the "
                "barrier",
                warp_in_cta, None, cycle, sm=sm_id, cta=cta,
            )

    def note_barrier_release(self, cta: int, cycle: int) -> None:
        self._epochs[cta] = self._epochs.get(cta, 0) + 1
        self.counters["barrier_epochs"] += 1

    # -- results ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def races(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.id == "SAN001"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "config": self.config.to_dict(),
            "ok": self.ok,
            "counters": dict(self.counters),
            "counts": {f"{i}@{pc}": n for (i, pc), n in
                       sorted(self.counts.items())},
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render(self) -> str:
        lines = [
            f"sanitizer {self.kernel or '?'}: "
            + ("OK" if self.ok else f"{len(self.diagnostics)} finding(s)")
            + f" ({self.counters['checked_writes']} writes checked, "
              f"{self.counters['barrier_epochs']} barrier epochs)"
        ]
        for diag in self.diagnostics:
            occurrences = self.counts.get((diag.id, diag.pc), 1)
            suffix = f" [x{occurrences}]" if occurrences > 1 else ""
            lines.append("  " + diag.format().replace("\n", "\n  ")
                         + suffix)
        return "\n".join(lines)


def as_sanitizer(value) -> Optional[Sanitizer]:
    """Coerce ``simulate``'s ``sanitize=`` argument.

    ``False``/``None`` -> None; ``True`` -> default :class:`Sanitizer`;
    a :class:`SanitizerConfig` -> sanitizer with that config; an
    existing :class:`Sanitizer` passes through (caller keeps the
    reference to inspect diagnostics afterwards).
    """
    if value is None or value is False:
        return None
    if value is True:
        return Sanitizer()
    if isinstance(value, SanitizerConfig):
        return Sanitizer(value)
    if isinstance(value, Sanitizer):
        return value
    raise TypeError(
        f"sanitize= expects bool, SanitizerConfig or Sanitizer, "
        f"got {type(value).__name__}"
    )
