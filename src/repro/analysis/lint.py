"""Static kernel lint: spin-loop, lock-discipline, barrier and CFG checks.

The checkers (catalog and failing examples in ``docs/analysis.md``):

========  ========  ====================================================
id        severity  finding
========  ========  ====================================================
SIB001    warning   statically a busy-wait spin loop, branch lacks ``!sib``
SIB002    error     annotated ``!sib`` but no spin loop found statically
LOCK001   error     ``!lock_try`` acquire with no ``!lock_release`` anywhere
LOCK002   error     ``!lock_release`` on a lock no path can hold here
LOCK003   error     lock may still be held when the thread exits
LOCK004   warning   re-acquiring a lock already held (self-deadlock)
BAR001    error     ``bar.sync`` reachable under warp divergence
REG001    error     register/predicate may be read before any definition
CFG001    warning   unreachable basic block
========  ========  ====================================================

A known-intentional finding is waived by annotating the instruction with
``!waive_<id>`` (e.g. ``!waive_sib001`` on NW's lock-acquire loop, which
is spin-*shaped* but deliberately unannotated because it never spins at
runtime).  Waived findings move to :attr:`LintReport.waived` and do not
fail the lint.

The SIB pass doubles as the paper's Table I *static oracle*:
:func:`static_sib_oracle` is the per-kernel ground-truth set derived
from the CFG alone, and :func:`score_against_oracle` diffs DDOS runtime
detections against it to produce TSDR/FSDR mechanically (see
``EXPERIMENTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis import dataflow
from repro.analysis.diagnostics import Diagnostic, waiver_role
from repro.isa.instructions import Instruction, Mem, Opcode, Reg
from repro.isa.program import Program

__all__ = [
    "LintReport",
    "lint_all",
    "lint_kernel",
    "lint_program",
    "score_against_oracle",
    "sib_candidates",
    "static_sib_oracle",
]


def sib_candidates(program: Program) -> Set[int]:
    """Branch indices the static SIB classifier flags (pre-waiver)."""
    return set(dataflow.spin_candidates(program))


def static_sib_oracle(program: Program) -> Set[int]:
    """The Table I static ground-truth SIB set: every statically
    detected spin branch except those carrying a ``!waive_sib001``
    role (spin-shaped code known never to spin at runtime)."""
    return {
        pc for pc in sib_candidates(program)
        if not program.instructions[pc].has_role(waiver_role("SIB001"))
    }


@dataclass
class LintReport:
    """Outcome of linting one program."""

    kernel: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Findings suppressed by ``!waive_<id>`` roles.
    waived: List[Diagnostic] = field(default_factory=list)
    #: Static SIB classifier output (pre-waiver branch indices).
    sib_candidates: List[int] = field(default_factory=list)
    #: Waiver-filtered ground truth (:func:`static_sib_oracle`).
    sib_oracle: List[int] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def ok(self) -> bool:
        """No unwaived findings of any severity."""
        return not self.diagnostics

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "waived": [d.to_dict() for d in self.waived],
            "sib_candidates": list(self.sib_candidates),
            "sib_oracle": list(self.sib_oracle),
        }

    def render(self) -> str:
        lines = []
        status = "OK" if self.ok else \
            f"{len(self.diagnostics)} finding(s), {len(self.errors)} error(s)"
        extra = f", {len(self.waived)} waived" if self.waived else ""
        lines.append(f"lint {self.kernel}: {status}{extra} "
                     f"(static SIBs: {self.sib_oracle or 'none'})")
        for diag in self.diagnostics:
            lines.append("  " + diag.format().replace("\n", "\n  "))
        for diag in self.waived:
            lines.append(f"  waived {diag.id} at pc {diag.pc} "
                         f"({diag.message})")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Individual passes

def _diag(kernel: str, diag_id: str, severity: str, pc: int,
          message: str, hint: str = "", **detail) -> Diagnostic:
    return Diagnostic(id=diag_id, severity=severity, kernel=kernel,
                      pc=pc, message=message, hint=hint,
                      detail=detail)


def _check_sibs(program: Program, kernel: str) -> List[Diagnostic]:
    out = []
    details = dataflow.spin_candidates(program)
    candidates = set(details)
    annotated = program.true_sibs()
    for pc in sorted(candidates - annotated):
        info = details[pc]
        out.append(_diag(
            kernel, "SIB001", "warning", pc,
            "busy-wait spin loop detected statically but the closing "
            "branch is not annotated !sib",
            hint="add !sib if this loop waits on another warp, or "
                 "!waive_sib001 if it is spin-shaped but never spins "
                 "at runtime",
            loop_blocks=info["loop_blocks"],
        ))
    for pc in sorted(annotated - candidates):
        out.append(_diag(
            kernel, "SIB002", "error", pc,
            "branch annotated !sib but the static classifier finds no "
            "busy-wait loop here",
            hint="the loop body makes forward progress (stores/atomics) "
                 "or its guard changes by the warp's own computation; "
                 "fix the annotation or the loop",
        ))
    return out


# -- lock discipline ---------------------------------------------------

def _lock_symbol(operand: Mem) -> str:
    return f"{operand.base.name}+{operand.offset}"


def _mem_operand(instr: Instruction) -> Optional[Mem]:
    if instr.opcode is Opcode.ST_GLOBAL:
        return instr.dst if isinstance(instr.dst, Mem) else None
    for operand in instr.srcs:
        if isinstance(operand, Mem):
            return operand
    return None


#: One abstract machine state: locks held as ``(symbol, acquire_pc)``
#: pairs, plus predicate facts ``(pred_key, symbol, true_means_held,
#: acquire_pc)`` and CAS-result facts ``(reg_key, symbol, compare_repr,
#: acquire_pc)``.
_State = Tuple[frozenset, frozenset, frozenset]

#: Defensive cap on distinct abstract states tracked per block.
_MAX_STATES = 64


def _operand_repr(operand) -> str:
    return str(operand)


def _lockset_pass(program: Program, kernel: str) -> List[Diagnostic]:
    """Lockset-style abstract interpretation with predicate refinement.

    Acquisition (``atom.cas [L], free, held !lock_try``) does not by
    itself add ``L`` to the held set — only the branch edge that
    observes the success predicate does, exactly like the hardware's
    per-lane predicate.  A ``setp`` comparing the CAS destination
    against the CAS compare operand binds that predicate to the lock;
    each branch edge then refines the held set for the path it starts.
    """
    diagnostics: List[Diagnostic] = []
    acquires: Dict[str, List[int]] = {}
    releases: Dict[str, List[int]] = {}
    for instr in program.instructions:
        mem = _mem_operand(instr)
        if mem is None:
            continue
        sym = _lock_symbol(mem)
        if instr.has_role("lock_try"):
            acquires.setdefault(sym, []).append(instr.index)
        if instr.has_role("lock_release"):
            releases.setdefault(sym, []).append(instr.index)

    # LOCK001: acquire with no release anywhere in the program.
    for sym, pcs in sorted(acquires.items()):
        if sym not in releases:
            for pc in pcs:
                diagnostics.append(_diag(
                    kernel, "LOCK001", "error", pc,
                    f"lock [{sym}] is acquired but never released "
                    f"anywhere in the kernel",
                    hint="add an atom.exch/st.global with !lock_release "
                         "on the same address after the critical section",
                    symbol=sym,
                ))

    if not acquires and not releases:
        return diagnostics

    reachable = dataflow.reachable_blocks(program)
    empty: _State = (frozenset(), frozenset(), frozenset())
    block_states: Dict[int, Set[_State]] = {b: set() for b in reachable}
    block_states[0] = {empty}
    # Facts gathered during the fixpoint, diagnosed afterwards so every
    # reaching state has been seen: per release pc, the held-symbols
    # observed; per acquire pc, whether some state already held it; per
    # exit pc, leaked (symbol, acquire_pc) pairs.
    release_seen: Dict[int, Set[bool]] = {}
    reacquire_seen: Dict[int, Set[str]] = {}
    exit_leaks: Set[Tuple[int, str, int]] = set()

    def kill_key(facts: frozenset, key: str) -> frozenset:
        return frozenset(f for f in facts if f[0] != key)

    def transfer(block_index: int, state: _State) -> List[Tuple[int, _State]]:
        held, preds, cas_facts = state
        block = program.blocks[block_index]
        for instr in program.instructions[block.start:block.end + 1]:
            mem = _mem_operand(instr)
            sym = _lock_symbol(mem) if mem is not None else None
            is_lock_try = instr.is_atomic and instr.has_role("lock_try")
            if is_lock_try:
                already = {s for s, _ in held}
                if sym in already:
                    reacquire_seen.setdefault(instr.index, set()).add(sym)
                if instr.dst is not None:
                    dst_key = "r:" + instr.dst.name
                    cas_facts = kill_key(cas_facts, dst_key)
                    if instr.opcode is Opcode.ATOM_CAS:
                        compare = _operand_repr(instr.srcs[1])
                    else:
                        # test-and-set style exch: success == saw 0
                        compare = "0"
                    cas_facts = cas_facts | {
                        (dst_key, sym, compare, instr.index)
                    }
            elif instr.has_role("lock_release") and sym is not None:
                release_seen.setdefault(instr.index, set()).add(
                    any(s == sym for s, _ in held))
                held = frozenset(h for h in held if h[0] != sym)
            if instr.is_setp and instr.dst is not None:
                pred_key = "p:" + instr.dst.name
                preds = kill_key(preds, pred_key)
                if instr.cmp in ("eq", "ne") and len(instr.srcs) == 2:
                    reprs = [_operand_repr(s) for s in instr.srcs]
                    keys = ["r:" + s.name if isinstance(s, Reg) else None
                            for s in instr.srcs]
                    for fact in cas_facts:
                        reg_key, sym_f, compare, acq_pc = fact
                        for i in (0, 1):
                            if keys[i] == reg_key and reprs[1 - i] == compare:
                                true_means_held = instr.cmp == "eq"
                                preds = preds | {
                                    (pred_key, sym_f, true_means_held,
                                     acq_pc)
                                }
            elif (not is_lock_try and instr.dst is not None
                    and not isinstance(instr.dst, Mem)):
                # any other write invalidates facts about that value
                # (the lock_try branch above already killed-then-bound
                # facts for its own destination)
                prefix = "p:" if instr.dst_key and \
                    instr.dst_key.startswith("p:") else "r:"
                key = prefix + instr.dst.name
                preds = kill_key(preds, key)
                cas_facts = kill_key(cas_facts, key)
            if instr.opcode is Opcode.EXIT and instr.guard is None:
                for s, pc in held:
                    exit_leaks.add((instr.index, s, pc))
                return []

        last = program.instructions[block.end]
        state_out = (held, preds, cas_facts)
        if last.opcode is Opcode.EXIT:
            # guarded exit: exiting lanes leak, others fall through
            for s, pc in held:
                exit_leaks.add((last.index, s, pc))
            return [(s, state_out) for s in block.successors]
        if not (last.is_conditional_branch and last.guard is not None):
            return [(s, state_out) for s in block.successors]
        # Refine along the two edges of a conditional branch whose
        # guard is bound to a lock-acquire outcome.
        guard_key = "p:" + last.guard.name
        bound = [f for f in preds if f[0] == guard_key]
        taken = program.block_of(last.target_index).index
        out = []
        for succ in block.successors:
            edge_held = held
            # guard truth on this edge: taken edge sees guard == (not
            # negated); the fall-through edge sees the complement.  When
            # target == fall-through both collapse to one edge and no
            # refinement applies.
            is_taken_edge = succ == taken
            guard_true = (not last.guard_negated) if is_taken_edge \
                else last.guard_negated
            for _, sym_f, true_means_held, acq_pc in bound:
                holds = guard_true == true_means_held
                if holds:
                    edge_held = edge_held | {(sym_f, acq_pc)}
            out.append((succ, (edge_held, preds, cas_facts)))
        return out

    work: List[Tuple[int, _State]] = [(0, empty)]
    processed: Set[Tuple[int, _State]] = set()
    while work:
        block_index, state = work.pop()
        if (block_index, state) in processed:
            continue
        processed.add((block_index, state))
        for succ, succ_state in transfer(block_index, state):
            states = block_states.setdefault(succ, set())
            if succ_state not in states and len(states) < _MAX_STATES:
                states.add(succ_state)
                work.append((succ, succ_state))

    for pc in sorted(release_seen):
        if True not in release_seen[pc]:
            sym = _lock_symbol(_mem_operand(program.instructions[pc]))
            diagnostics.append(_diag(
                kernel, "LOCK002", "error", pc,
                f"release of lock [{sym}] that no path can hold here",
                hint="the release is reachable without a successful "
                     "!lock_try acquire of the same address — check the "
                     "branch structure around the acquire",
                symbol=sym,
            ))
    for pc in sorted(reacquire_seen):
        syms = ", ".join(sorted(reacquire_seen[pc]))
        diagnostics.append(_diag(
            kernel, "LOCK004", "warning", pc,
            f"re-acquiring lock [{syms}] while a path already holds it",
            hint="spinning on a lock this lane holds can never succeed "
                 "— guaranteed livelock on a blocking acquire",
        ))
    for pc, sym, acq_pc in sorted(exit_leaks):
        diagnostics.append(_diag(
            kernel, "LOCK003", "error", acq_pc,
            f"lock [{sym}] acquired here may still be held at thread "
            f"exit (pc {pc})",
            hint="every path from the acquire must release before exit; "
                 "other warps spinning on this lock will livelock",
            exit_pc=pc, symbol=sym,
        ))
    return diagnostics


def _check_barriers(program: Program, kernel: str) -> List[Diagnostic]:
    out = []
    _, divergent = dataflow.uniformity(program)
    flagged: Set[int] = set()
    for branch_pc in sorted(divergent):
        region = dataflow.divergent_region(program, branch_pc)
        for b in region:
            block = program.blocks[b]
            for instr in program.instructions[block.start:block.end + 1]:
                if instr.opcode is Opcode.BAR_SYNC \
                        and instr.index not in flagged:
                    flagged.add(instr.index)
                    out.append(_diag(
                        kernel, "BAR001", "error", instr.index,
                        f"bar.sync is reachable under divergence created "
                        f"by the branch at pc {branch_pc}",
                        hint="a partial warp arriving at a barrier "
                             "deadlocks the CTA on stack-based SIMT "
                             "hardware; hoist the barrier to converged "
                             "control flow",
                        branch_pc=branch_pc,
                    ))
    return out


def _check_registers(program: Program, kernel: str) -> List[Diagnostic]:
    out = []
    for pc, key in dataflow.use_before_def(program):
        kind = "predicate" if key.startswith("p:") else "register"
        name = key[2:]
        out.append(_diag(
            kernel, "REG001", "error", pc,
            f"{kind} %{name} may be read before any definition",
            hint="initialize it on every path from kernel entry",
            value=key,
        ))
    return out


def _check_cfg(program: Program, kernel: str) -> List[Diagnostic]:
    out = []
    for b in sorted(dataflow.unreachable_blocks(program)):
        block = program.blocks[b]
        out.append(_diag(
            kernel, "CFG001", "warning", block.start,
            f"basic block {b} (pc {block.start}..{block.end}) is "
            f"unreachable from kernel entry",
            hint="dead code, or a branch target typo",
            block=b,
        ))
    return out


# ----------------------------------------------------------------------
# Entry points

def lint_program(program: Program,
                 kernel: Optional[str] = None) -> LintReport:
    """Run every static pass over an assembled program."""
    name = kernel or program.name
    findings: List[Diagnostic] = []
    findings += _check_cfg(program, name)
    findings += _check_registers(program, name)
    findings += _check_sibs(program, name)
    findings += _lockset_pass(program, name)
    findings += _check_barriers(program, name)

    report = LintReport(
        kernel=name,
        sib_candidates=sorted(sib_candidates(program)),
        sib_oracle=sorted(static_sib_oracle(program)),
    )
    seen: Set[Tuple[str, int, str]] = set()
    for diag in findings:
        dedup = (diag.id, diag.pc, diag.message)
        if dedup in seen:
            continue
        seen.add(dedup)
        waived = (
            0 <= diag.pc < len(program.instructions)
            and program.instructions[diag.pc].has_role(
                waiver_role(diag.id))
        )
        (report.waived if waived else report.diagnostics).append(diag)
    order = {"error": 0, "warning": 1, "info": 2}
    report.diagnostics.sort(key=lambda d: (order[d.severity], d.id, d.pc))
    return report


def lint_kernel(name: str, params: Optional[Dict[str, int]] = None
                ) -> LintReport:
    """Build a registered kernel (default parameters unless overridden)
    and lint its program."""
    from repro.kernels import build

    workload = build(name, **(params or {}))
    return lint_program(workload.launch.program, kernel=name)


def lint_all(params: Optional[Dict[str, Dict[str, int]]] = None
             ) -> Dict[str, LintReport]:
    """Lint every registered kernel; ``params`` maps kernel name to
    parameter overrides."""
    from repro.kernels import kernel_names

    params = params or {}
    return {
        name: lint_kernel(name, params.get(name))
        for name in kernel_names()
    }


def score_against_oracle(program: Program,
                         detected: Iterable[int]) -> Dict[str, Any]:
    """Diff DDOS runtime detections against the static SIB oracle.

    Mirrors the paper's Table I metrics with the *static* ground truth
    in place of the ``!sib`` annotations: TSDR = detected true SIBs /
    oracle SIBs, FSDR = detected non-SIB backward branches / non-SIB
    backward branches.
    """
    oracle = static_sib_oracle(program)
    detected = set(detected)
    backward = program.backward_branches()
    false_candidates = backward - oracle
    detected_true = detected & oracle
    detected_false = detected & false_candidates
    return {
        "oracle": sorted(oracle),
        "detected": sorted(detected),
        "true_detected": sorted(detected_true),
        "false_detected": sorted(detected_false),
        "tsdr": (len(detected_true) / len(oracle)) if oracle else 1.0,
        "fsdr": (len(detected_false) / len(false_candidates))
                if false_candidates else 0.0,
    }
