"""CFG dataflow analyses behind the static lint.

Pure analyses over :class:`repro.isa.program.Program` — no diagnostics
here, just facts:

* :func:`reachable_blocks` / :func:`unreachable_blocks` — entry
  reachability.
* :func:`use_before_def` — per-lane definite-assignment (which register
  or predicate reads can observe an undefined value on some path).
* :func:`uniformity` — which values are warp-*varying* and which
  branches can therefore diverge, with the feedback that any value
  written inside a divergent region is itself varying (a ``mov`` under a
  partial mask leaves lanes disagreeing even though its sources are
  uniform).
* :func:`divergent_region` — the blocks executing under a given
  branch's divergence, i.e. everything reachable from its successors
  without passing through its reconvergence block.
* :func:`loop_variant_values` — which values change from one loop
  iteration to the next *by the loop's own computation* (induction
  updates, ``clock`` reads) as opposed to values that only another warp
  can change (loaded flags, failed CAS results).  A backward branch
  whose guard is loop-invariant in this sense is a busy-wait: the warp
  cannot leave the loop without outside intervention.
* :func:`spin_candidates` — the paper's SIB definition made static:
  natural loops (dominance back edges) whose witness-free subgraph
  still contains the back-edge cycle and whose exit guards are not
  loop-variant.

Values are keyed like scoreboard hazard keys: ``"r:name"`` for
registers, ``"p:name"`` for predicates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.isa.instructions import (
    ALU_OPCODES,
    ATOMIC_OPCODES,
    Instruction,
    Mem,
    Opcode,
    Pred,
    Reg,
    Sreg,
)
from repro.isa.program import RECONVERGE_AT_EXIT, Program

__all__ = [
    "divergent_region",
    "loop_variant_values",
    "reachable_blocks",
    "spin_candidates",
    "uniformity",
    "unreachable_blocks",
    "use_before_def",
]

#: Special registers that differ between lanes of one warp.
VARYING_SREGS = frozenset({"tid", "laneid", "gtid"})

#: Opcodes whose destination is loop-variant by itself (time advances).
_SELF_VARIANT = frozenset({Opcode.CLOCK})

#: Loads and read-modify-writes: the destination depends on *memory*,
#: which only some other warp can change — polling, not progress.
_MEMORY_DST = frozenset({Opcode.LD_GLOBAL, Opcode.LD_GLOBAL_CG}) | ATOMIC_OPCODES


def _key(operand) -> Optional[str]:
    if isinstance(operand, Reg):
        return "r:" + operand.name
    if isinstance(operand, Pred):
        return "p:" + operand.name
    return None


def _block_instrs(program: Program, block_index: int) -> Iterable[Instruction]:
    block = program.blocks[block_index]
    return program.instructions[block.start:block.end + 1]


def reachable_blocks(program: Program) -> Set[int]:
    """Block indices reachable from the entry block."""
    seen = {0}
    stack = [0]
    while stack:
        for succ in program.blocks[stack.pop()].successors:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def unreachable_blocks(program: Program) -> Set[int]:
    return {b.index for b in program.blocks} - reachable_blocks(program)


# ----------------------------------------------------------------------
# Definite assignment

def _uses(instr: Instruction) -> List[str]:
    keys = []
    if instr.guard is not None:
        keys.append("p:" + instr.guard.name)
    for operand in instr.read_operands():
        if isinstance(operand, Mem):
            keys.append("r:" + operand.base.name)
        else:
            key = _key(operand)
            if key is not None:
                keys.append(key)
    return keys


def _defs(instr: Instruction) -> List[str]:
    # A guarded write still defines the value for this analysis; per-lane
    # guard-precision is out of scope (guards on non-branches are rare in
    # this ISA and `selp` covers conditional values).
    if instr.opcode is Opcode.ST_GLOBAL:
        return []  # dst is the memory operand, read not written
    key = _key(instr.dst)
    return [key] if key is not None else []


def use_before_def(program: Program) -> List[Tuple[int, str]]:
    """``(instruction index, value key)`` pairs where a register or
    predicate may be read before any definition on some path."""
    reachable = sorted(reachable_blocks(program))
    universe = frozenset(
        key
        for instr in program.instructions
        for key in _uses(instr) + _defs(instr)
    )
    preds: Dict[int, List[int]] = {b: [] for b in reachable}
    for b in reachable:
        for succ in program.blocks[b].successors:
            if succ in preds:
                preds[succ].append(b)

    def transfer(state: frozenset, block_index: int) -> frozenset:
        defined = set(state)
        for instr in _block_instrs(program, block_index):
            defined.update(_defs(instr))
        return frozenset(defined)

    in_state: Dict[int, frozenset] = {b: universe for b in reachable}
    in_state[0] = frozenset()
    out_state: Dict[int, frozenset] = {
        b: transfer(in_state[b], b) for b in reachable
    }
    work = list(reachable)
    while work:
        b = work.pop()
        if preds[b]:
            new_in = frozenset.intersection(
                *(out_state[p] for p in preds[b])
            )
            if b == 0:
                new_in = frozenset()  # entry also starts undefined
        else:
            new_in = frozenset() if b == 0 else universe
        if new_in != in_state[b]:
            in_state[b] = new_in
        new_out = transfer(new_in, b)
        if new_out != out_state[b]:
            out_state[b] = new_out
            work.extend(s for s in program.blocks[b].successors
                        if s in preds)

    violations: List[Tuple[int, str]] = []
    for b in reachable:
        defined = set(in_state[b])
        for instr in _block_instrs(program, b):
            for key in _uses(instr):
                if key not in defined:
                    violations.append((instr.index, key))
            defined.update(_defs(instr))
    return sorted(set(violations))


# ----------------------------------------------------------------------
# Uniformity / divergence

def divergent_region(program: Program, branch_index: int) -> Set[int]:
    """Blocks executing under ``branch_index``'s divergence: reachable
    from the branch's successors without entering its reconvergence
    block.  The reconvergence block itself is excluded — by the time it
    executes, the IPDOM stack has re-merged the warp."""
    instr = program.instructions[branch_index]
    block = program.block_of(branch_index)
    rpc = program.reconvergence.get(branch_index, RECONVERGE_AT_EXIT)
    rpc_block = None if rpc == RECONVERGE_AT_EXIT else program.block_of(rpc).index
    region: Set[int] = set()
    stack = [s for s in block.successors if s != rpc_block]
    while stack:
        b = stack.pop()
        if b in region:
            continue
        region.add(b)
        stack.extend(s for s in program.blocks[b].successors
                     if s != rpc_block and s not in region)
    return region


def uniformity(program: Program) -> Tuple[Set[str], Set[int]]:
    """``(varying value keys, divergent conditional-branch indices)``.

    Fixpoint of three mutually dependent facts: a value is varying if
    computed from varying inputs (``%tid``/``%laneid``/``%gtid``, loads,
    atomic results) *or written anywhere inside a divergent region*; a
    conditional branch is divergent if its guard is varying; a divergent
    region is what :func:`divergent_region` returns for a divergent
    branch."""
    reachable = reachable_blocks(program)
    varying: Set[str] = set()
    divergent: Set[int] = set()
    divergent_instrs: Set[int] = set()
    while True:
        changed = False
        for b in reachable:
            for instr in _block_instrs(program, b):
                dst = _key(instr.dst)
                if dst is None or dst in varying:
                    continue
                if instr.opcode is Opcode.ST_GLOBAL:
                    continue
                is_varying = False
                if instr.opcode in _MEMORY_DST:
                    is_varying = True
                elif instr.index in divergent_instrs:
                    is_varying = True
                else:
                    for operand in instr.srcs:
                        if isinstance(operand, Sreg):
                            if operand.name in VARYING_SREGS:
                                is_varying = True
                                break
                        else:
                            key = _key(operand)
                            if key is not None and key in varying:
                                is_varying = True
                                break
                if is_varying:
                    varying.add(dst)
                    changed = True
        for b in reachable:
            instr = program.instructions[program.blocks[b].end]
            if (instr.is_conditional_branch
                    and instr.index not in divergent
                    and "p:" + instr.guard.name in varying):
                divergent.add(instr.index)
                region = divergent_region(program, instr.index)
                for rb in region:
                    for r_instr in _block_instrs(program, rb):
                        divergent_instrs.add(r_instr.index)
                changed = True
        if not changed:
            return varying, divergent


# ----------------------------------------------------------------------
# Loop variance and spin candidates

def loop_variant_values(program: Program, blocks: Set[int]) -> Set[str]:
    """Value keys that change across iterations of a cycle through
    ``blocks`` by the warp's *own* computation.

    Seeds: ``clock`` destinations (time advances) and self-updating ALU
    destinations (``add %r, %r, 1`` — induction).  Variance propagates
    through ALU/``setp``/``selp`` data dependencies.  Load and atomic
    destinations are *not* variant: they repeat the same value until
    another warp changes memory — that is waiting, not progress."""
    variant: Set[str] = set()
    instrs = [i for b in blocks for i in _block_instrs(program, b)]
    changed = True
    while changed:
        changed = False
        for instr in instrs:
            dst = _key(instr.dst)
            if dst is None or dst in variant:
                continue
            if instr.opcode in _MEMORY_DST or instr.opcode is Opcode.ST_GLOBAL:
                continue
            is_variant = False
            if instr.opcode in _SELF_VARIANT:
                is_variant = True
            elif instr.opcode in ALU_OPCODES or instr.is_setp:
                for operand in instr.srcs:
                    key = _key(operand)
                    if key is not None and (key in variant or key == dst):
                        is_variant = True
                        break
            if is_variant:
                variant.add(dst)
                changed = True
    return variant


def _is_progress_witness(instr: Instruction) -> bool:
    """Does executing this instruction constitute forward progress?

    Plain global stores, unconditional read-modify-write atomics and
    barrier arrivals all advance observable state.  ``atom.cas`` never
    does (it is the polling primitive) and ``!lock_release`` accesses of
    any opcode do not either — releasing a lock you could not use (the
    ATM/DS retry protocol drops the outer lock when the inner CAS
    fails) is part of the spin, not an escape from it."""
    if instr.has_role("lock_release"):
        return False
    if instr.opcode is Opcode.ST_GLOBAL:
        return True
    if instr.opcode is Opcode.BAR_SYNC:
        return True
    if instr.opcode in ATOMIC_OPCODES and instr.opcode is not Opcode.ATOM_CAS:
        return True
    return False


def _spin_core(program: Program, blocks: Set[int],
               head: int, tail: int) -> Set[int]:
    """Blocks lying on some ``head -> ... -> tail`` path inside ``blocks``.

    Empty when no such path exists.  Restricting the spin subgraph to
    this core matters: a block of ``blocks`` that is only reachable
    *through* a progress-witness block (e.g. the induction-variable
    bump after a critical section) is not part of the no-progress cycle
    and must not contribute loop-variant values to the analysis.
    """
    if head not in blocks or tail not in blocks:
        return set()
    fwd = {head}
    stack = [head]
    while stack:
        for succ in program.blocks[stack.pop()].successors:
            if succ in blocks and succ not in fwd:
                fwd.add(succ)
                stack.append(succ)
    if tail not in fwd:
        return set()
    preds: Dict[int, Set[int]] = {b: set() for b in blocks}
    for b in blocks:
        for succ in program.blocks[b].successors:
            if succ in blocks:
                preds[succ].add(b)
    bwd = {tail}
    stack = [tail]
    while stack:
        for pred in preds[stack.pop()]:
            if pred not in bwd:
                bwd.add(pred)
                stack.append(pred)
    return fwd & bwd


def spin_candidates(program: Program) -> Dict[int, Dict[str, object]]:
    """Statically detected spin-inducing branches.

    Maps the closing-branch instruction index of each qualifying back
    edge to facts about the loop.  A back edge qualifies when:

    1. its *spin subgraph* — the natural-loop blocks containing no
       progress witness (:func:`_is_progress_witness`), restricted to
       the blocks actually on a witness-free ``head -> tail`` cycle
       (:func:`_spin_core`) — is non-empty, i.e. the warp can go
       around without making progress; and
    2. the loop cannot terminate by its own computation: the closing
       branch's guard (when conditional) is not loop-variant inside the
       spin subgraph, and no conditional branch that *escapes* the
       subgraph (a loop exit, or an edge into a progress-witness block
       such as the critical section) has a loop-variant guard.  A
       variant escape guard means the warp leaves the spin by itself
       after finitely many iterations — a delay loop, not a busy-wait.
    """
    candidates: Dict[int, Dict[str, object]] = {}
    reachable = reachable_blocks(program)
    for (tail, head), loop_blocks in sorted(program.natural_loops().items()):
        if tail not in reachable:
            continue
        closing = program.instructions[program.blocks[tail].end]
        if not closing.is_branch:
            continue
        if closing.target_index != program.blocks[head].start:
            continue
        witnesses = {
            b for b in loop_blocks
            if any(_is_progress_witness(i) for i in _block_instrs(program, b))
        }
        spin_blocks = _spin_core(program, loop_blocks - witnesses, head, tail)
        if not spin_blocks:
            continue
        variant = loop_variant_values(program, spin_blocks)
        if (closing.is_conditional_branch
                and "p:" + closing.guard.name in variant):
            continue
        escapes_by_itself = False
        for b in spin_blocks:
            instr = program.instructions[program.blocks[b].end]
            if not instr.is_conditional_branch or instr.index == closing.index:
                continue
            block = program.blocks[b]
            succs = set(block.successors)
            if succs <= spin_blocks:
                continue  # internal edge (e.g. a nested delay loop)
            if "p:" + instr.guard.name in variant:
                escapes_by_itself = True
                break
        if escapes_by_itself:
            continue
        candidates[closing.index] = {
            "back_edge": (tail, head),
            "loop_blocks": sorted(loop_blocks),
            "spin_blocks": sorted(spin_blocks),
            "witness_blocks": sorted(witnesses),
            "variant": sorted(variant),
        }
    return candidates
