"""Structured diagnostics shared by the static lint and the sanitizer.

Every finding — static or runtime — is a :class:`Diagnostic`: a stable
checker id (``SIB001``, ``LOCK002``, ``SAN001`` ...), a severity, the
instruction index it anchors to, and a fix hint.  Diagnostics are plain
data (``to_dict`` round-trips through JSON) so they can ride lab
manifests, fuzz reports and :class:`~repro.sim.progress.HangReport`
payloads unchanged.

Known-intentional findings are *waived* at the source: annotating the
offending instruction with ``!waive_<id>`` (lower-case id, e.g.
``!waive_sib001``) moves the diagnostic from the report's ``diagnostics``
list to its ``waived`` list.  See ``docs/analysis.md`` for the checker
catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Diagnostic", "SEVERITIES", "waiver_role"]

#: Severity levels, most severe first.
SEVERITIES = ("error", "warning", "info")


def waiver_role(diag_id: str) -> str:
    """Role name that waives diagnostic ``diag_id`` (``!waive_sib001``)."""
    return "waive_" + diag_id.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding from the static lint or the runtime sanitizer."""

    #: Stable checker id, e.g. ``"SIB001"`` / ``"SAN002"``.
    id: str
    #: ``"error"`` | ``"warning"`` | ``"info"``.
    severity: str
    #: Kernel / program name the finding belongs to.
    kernel: str
    #: Instruction index the finding anchors to (-1 = whole program).
    pc: int
    #: One-line description of the problem.
    message: str
    #: Actionable fix suggestion.
    hint: str = ""
    #: Runtime context (sanitizer findings only).
    warp: Optional[int] = None
    lane: Optional[int] = None
    cycle: Optional[int] = None
    #: Free-form extra context (addresses, register names, ...).
    detail: Dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "id": self.id,
            "severity": self.severity,
            "kernel": self.kernel,
            "pc": self.pc,
            "message": self.message,
        }
        if self.hint:
            data["hint"] = self.hint
        for key in ("warp", "lane", "cycle"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.detail:
            data["detail"] = dict(self.detail)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Diagnostic":
        return cls(
            id=data["id"],
            severity=data["severity"],
            kernel=data.get("kernel", ""),
            pc=data.get("pc", -1),
            message=data.get("message", ""),
            hint=data.get("hint", ""),
            warp=data.get("warp"),
            lane=data.get("lane"),
            cycle=data.get("cycle"),
            detail=dict(data.get("detail", {})),
        )

    def format(self) -> str:
        """One-line human rendering: ``kernel:pc: error SIB001: ...``."""
        where = f"{self.kernel}:{self.pc}" if self.pc >= 0 else self.kernel
        line = f"{where}: {self.severity} {self.id}: {self.message}"
        ctx = []
        if self.cycle is not None:
            ctx.append(f"cycle {self.cycle}")
        if self.warp is not None:
            ctx.append(f"warp {self.warp}")
        if self.lane is not None:
            ctx.append(f"lane {self.lane}")
        if ctx:
            line += f" ({', '.join(ctx)})"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line
