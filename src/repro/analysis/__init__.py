"""repro.analysis — correctness tooling for the kernel zoo.

Two layers (see ``docs/analysis.md``):

* **Static lint** (:mod:`repro.analysis.lint`, CLI ``repro lint``):
  CFG/dataflow passes over assembled programs — spin-loop (SIB)
  classification that doubles as the Table I static oracle, lockset
  abstract interpretation of the ``atom.cas``/``atom.exch`` lock
  idioms, divergent-barrier detection, use-before-def and
  unreachable-code checks.
* **Dynamic sanitizer** (:mod:`repro.analysis.sanitizer`,
  ``simulate(sanitize=True)``): execution-time lockset/happens-before
  race detection on lock-protected addresses, runtime barrier
  divergence, and lock-discipline violations, with structured
  :class:`~repro.analysis.diagnostics.Diagnostic` records that ride
  hang reports and lab manifests.
"""

from repro.analysis.diagnostics import Diagnostic, waiver_role
from repro.analysis.lint import (
    LintReport,
    lint_all,
    lint_kernel,
    lint_program,
    score_against_oracle,
    sib_candidates,
    static_sib_oracle,
)
from repro.analysis.sanitizer import Sanitizer, SanitizerConfig, as_sanitizer

__all__ = [
    "Diagnostic",
    "LintReport",
    "Sanitizer",
    "SanitizerConfig",
    "as_sanitizer",
    "lint_all",
    "lint_kernel",
    "lint_program",
    "score_against_oracle",
    "sib_candidates",
    "static_sib_oracle",
    "waiver_role",
]
