"""GPUWattch-style dynamic-energy accounting."""

from repro.energy.model import EnergyModel, EnergyBreakdown

__all__ = ["EnergyBreakdown", "EnergyModel"]
