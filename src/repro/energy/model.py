"""Per-event dynamic-energy model (GPUWattch substitute).

The paper reports *normalized dynamic energy* (Figures 9b, 15b), which is
a ratio of event-count-weighted sums; absolute joules cancel out.  We
charge McPAT-flavoured per-event energies:

* front-end cost per issued warp instruction (fetch/decode/issue/
  scheduler arbitration);
* execution cost per active lane (ALU plus operand-collector register
  accesses — spin iterations burn this even though their results are
  discarded);
* memory costs per transaction at each level (L1/L2/DRAM) and per atomic
  operation;
* a small per-cycle "active core" charge (clock tree and pipeline
  registers), so pure stalling is cheap but not free.

Constants are in picojoules, in the relative proportions GPUWattch
reports for Fermi-class hardware; only ratios matter for the figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.stats import SimStats


@dataclass(frozen=True)
class EnergyCosts:
    """Per-event dynamic energies (picojoules)."""

    warp_instruction_pj: float = 60.0    # fetch/decode/issue, per warp instr
    lane_op_pj: float = 9.0              # ALU + RF, per active lane
    l1_access_pj: float = 150.0          # per L1 transaction
    l2_access_pj: float = 300.0          # per L2 transaction
    dram_access_pj: float = 2000.0       # per DRAM burst
    atomic_op_pj: float = 400.0          # per atomic, on top of L2
    active_cycle_pj: float = 25.0        # per SM-cycle clock/pipeline charge


@dataclass
class EnergyBreakdown:
    """Dynamic energy by component (picojoules)."""

    frontend_pj: float
    execution_pj: float
    memory_pj: float
    clocking_pj: float

    @property
    def total_pj(self) -> float:
        return (
            self.frontend_pj
            + self.execution_pj
            + self.memory_pj
            + self.clocking_pj
        )


class EnergyModel:
    """Maps a run's event counters onto a dynamic-energy estimate."""

    def __init__(self, costs: EnergyCosts = EnergyCosts(),
                 num_sms: int = 1) -> None:
        self.costs = costs
        self.num_sms = num_sms

    def evaluate(self, stats: SimStats) -> EnergyBreakdown:
        costs = self.costs
        mem = stats.memory
        frontend = stats.warp_instructions * costs.warp_instruction_pj
        execution = stats.thread_instructions * costs.lane_op_pj
        l1_accesses = mem.l1_hits + mem.l1_misses
        memory = (
            l1_accesses * costs.l1_access_pj
            + (mem.l2_hits + mem.l2_misses) * costs.l2_access_pj
            + mem.dram_accesses * costs.dram_access_pj
            + mem.atomic_transactions * costs.atomic_op_pj
        )
        clocking = stats.cycles * self.num_sms * costs.active_cycle_pj
        return EnergyBreakdown(
            frontend_pj=frontend,
            execution_pj=execution,
            memory_pj=memory,
            clocking_pj=clocking,
        )
