"""Figure 16: sensitivity to contention + ideal-blocking (HQL) proxy."""

from conftest import record, run_once

from repro.harness.experiments import fig16


def test_fig16_contention(benchmark):
    result = run_once(benchmark, fig16, scale="full")
    record(result)
    rows = {r["buckets"]: r for r in result.rows}
    high = rows[min(rows)]   # fewest buckets = most contention
    low = rows[max(rows)]
    # Paper: BOWS's speedup is largest at high contention (5x at 128
    # buckets for their scale) and tapers off at low contention (1.2x).
    assert high["bows_speedup"] > low["bows_speedup"] * 0.9
    assert high["bows_speedup"] > 1.1
    # Paper: the benefit of an idealized queueing lock over BOWS
    # diminishes as buckets grow (Figure 16b) — the BOWS/ideal
    # instruction ratio converges toward 1.
    ratio_high = high["bows_instr"] / high["ideal_blocking_instr"]
    ratio_low = low["bows_instr"] / low["ideal_blocking_instr"]
    assert ratio_low < ratio_high
    # BOWS removes spin instructions where there is contention to
    # remove; the ideal blocking lock is always the floor.
    assert high["bows_instr"] < 0.9
    for row in result.rows:
        assert row["bows_instr"] < 1.1
        assert row["ideal_blocking_instr"] < row["bows_instr"]
