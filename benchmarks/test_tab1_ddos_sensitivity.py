"""Table I: DDOS detection accuracy vs design parameters."""

from conftest import record, run_once

from repro.harness.experiments import tab1


def test_tab1_ddos_sensitivity(benchmark):
    result = run_once(benchmark, tab1, scale="full")
    record(result)
    rows = {(r["sweep"], r["setting"]): r for r in result.rows}

    default = rows[("hashing", "xor, m=k=8")]
    # Paper headline: XOR with 8-bit hashes detects every spin loop
    # with zero false detections.
    assert default["TSDR"] == 1.0
    assert default["FSDR"] == 0.0

    # Paper: MODULO hashing falsely detects power-of-two-stride loops
    # (strictly more false detections than XOR).
    assert (rows[("hashing", "modulo, m=k=8")]["FSDR"]
            > default["FSDR"])

    # Paper: 2-bit hashes alias; 8-bit hashes are clean.
    assert rows[("width", "m=k=2")]["FSDR"] >= rows[("width", "m=k=8")]["FSDR"]

    # Paper: larger confidence thresholds lengthen the detection phase.
    assert (
        rows[("threshold", "t=12")]["DPR(true)"]
        >= rows[("threshold", "t=2")]["DPR(true)"]
    )

    # Paper: too-short history registers cannot capture the loop period.
    assert rows[("history", "l=1")]["TSDR"] == 0.0
    assert rows[("history", "l=8")]["TSDR"] == 1.0

    # Paper: time-sharing the history registers degrades detection.
    assert (
        rows[("time-sharing", "sh=1, m=k=8")]["TSDR"]
        <= rows[("time-sharing", "sh=0, m=k=8")]["TSDR"]
    )
