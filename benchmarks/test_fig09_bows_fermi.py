"""Figure 9: BOWS performance and energy on the GTX480-shaped machine."""

from conftest import record, run_once

from repro.harness.experiments import fig9


def test_fig9_bows_fermi(benchmark):
    result = run_once(benchmark, fig9, scale="full")
    record(result)
    headline = result.headline
    # Paper: gmean speedups of 2.2x / 1.4x / 1.5x over LRR / GTO / CAWA.
    # Our scaled simulator reproduces the win on LRR and GTO (smaller
    # magnitudes at laptop scale).  The CAWA x BOWS combination has a
    # documented deviation on the wait-pipeline kernels (EXPERIMENTS.md
    # deviation 4): its criticality estimate and the adaptive throttle
    # mis-pace NW/TB at our warp counts, so CAWA's gmean is held to a
    # weaker bound while its energy saving must still be positive.
    for base in ("lrr", "gto"):
        assert headline[f"speedup_vs_{base}"] > 1.05, headline
        assert headline[f"energy_saving_vs_{base}"] > 1.1, headline
    assert headline["speedup_vs_cawa"] > 0.6, headline
    assert headline["energy_saving_vs_cawa"] > 1.0, headline
    rows = {r["kernel"]: r for r in result.rows}
    # Paper: TB is barrier-throttled already, so BOWS moves it far less
    # than the lock-heavy kernels (band reflects adaptive-walk noise).
    tb = rows["tb"]
    assert abs(tb["gto+bows_time"] - tb["gto_time"]) / tb["gto_time"] < 0.3
    # Paper: the big winners are the lock-heavy kernels.
    assert rows["ht"]["gto+bows_time"] < rows["ht"]["gto_time"]
    assert rows["ds"]["gto+bows_time"] < rows["ds"]["gto_time"]
    assert rows["atm"]["gto+bows_time"] < rows["atm"]["gto_time"]
