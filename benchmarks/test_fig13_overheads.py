"""Figure 13: dynamic instruction count, memory transactions, SIMD."""

from conftest import cached, record, run_once

from repro.harness.experiments import fig13, run_delay_sweep


def test_fig13_overheads(benchmark):
    sweep = run_once(
        benchmark,
        lambda: cached("delay_sweep", lambda: run_delay_sweep("full")),
    )
    result = fig13(sweep=sweep)
    record(result)
    instr = {
        r["kernel"]: r for r in result.rows if r["metric"] == "instructions"
    }
    mem = {
        r["kernel"]: r for r in result.rows if r["metric"] == "memory_tx"
    }
    simd = {
        r["kernel"]: r for r in result.rows if r["metric"] == "simd_eff"
    }
    # Paper: BOWS cuts dynamic instructions by 2.1x gmean vs GTO.
    assert result.headline["instr_reduction_adaptive"] > 1.2
    # Paper: memory transactions drop as spin retries disappear.
    assert mem["ht"]["bows(adaptive)"] < 1.0
    assert instr["ht"]["bows(adaptive)"] < 0.8
    # Paper: SIMD efficiency improves on HT/ATM once spinning is
    # throttled (the adaptive walk does not always land there, so the
    # claim is checked at a moderate fixed delay).
    assert simd["ht"]["bows(1000)"] > simd["ht"]["gto"]
    assert simd["atm"]["bows(1000)"] > simd["atm"]["gto"]
