"""Figure 11: backed-off warp occupancy across delay limits."""

from conftest import cached, record, run_once

from repro.harness.experiments import fig11, run_delay_sweep


def test_fig11_warp_distribution(benchmark):
    sweep = run_once(
        benchmark,
        lambda: cached("delay_sweep", lambda: run_delay_sweep("full")),
    )
    result = fig11(sweep=sweep)
    record(result)
    rows = {r["kernel"]: r for r in result.rows}
    for kernel, row in rows.items():
        # Plain GTO never backs anything off.
        assert row["gto"] == 0.0
        # Paper: the backed-off fraction grows with the delay limit once
        # past the kernel's natural iteration time.
        assert row["bows(5000)"] >= row["bows(0)"], kernel
    # The lock-heavy kernels spend a large share of warps backed off at
    # large delays.
    assert rows["ht"]["bows(5000)"] > 0.2
