"""Perf smoke test: the dynamic sanitizer must be cheap when on.

Same harness shape as ``test_obs_overhead.py``: wall-clock ratio of a
sanitize-on run to a plain run of the same lock-heavy workload in the
same process.  The hooks sit behind one ``san is not None`` test per
memory/barrier instruction, and the checking itself is dictionary work
per *lock-adjacent* access, so even the hashtable kernel — nothing but
lock traffic — must stay under 2.5x.  The off path is covered by the
hot-loop benchmark: when ``sanitize`` is not passed every guard is a
single pointer test.

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/perf -q
"""

from __future__ import annotations

import time

from repro.api import simulate
from repro.sim.config import GPUConfig

HT = dict(n_threads=256, n_buckets=8, items_per_thread=1, block_dim=128)

REPS = 3

#: Sanitize-on slowdown ceiling (same budget as full obs collection).
SANITIZE_CEILING = 2.5


def _best_wall(sanitize, reps=REPS):
    config = GPUConfig.preset("fermi", scheduler="gto")
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = simulate("ht", config=config, params=dict(HT),
                          sanitize=sanitize)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_sanitizer_overhead_stays_under_ceiling():
    plain, _ = _best_wall(None)
    checked, result = _best_wall(True)
    sanitizer = result.sanitizer
    assert sanitizer.counters["checked_writes"] > 0, \
        "sanitizer must be exercised"
    assert sanitizer.counters["lock_acquires"] > 0
    assert sanitizer.ok, sanitizer.render()
    ratio = checked / plain
    assert ratio < SANITIZE_CEILING, (
        f"sanitize-on run costs {ratio:.2f}x "
        f"(ceiling {SANITIZE_CEILING}x; plain {plain * 1e3:.1f}ms, "
        f"checked {checked * 1e3:.1f}ms)"
    )
