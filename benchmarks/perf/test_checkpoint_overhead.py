"""Perf smoke test: autocheckpointing must be nearly free.

``simulate(checkpoint_every=...)`` at the default epoch
(``config.progress_epoch``) serializes the complete machine state once
per epoch — a pickle of the simulation graph plus an atomic file write.
That must stay within **10%** of the plain run's wall clock on the
fast engine, or crash-safety would become something users turn off.

Measured as a same-process wall-clock ratio (min over reps, so
machine noise divides out), on the same lock-heavy ht workload the
other overhead guards use, plus the sync-free nw1 shape.

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/perf -q
"""

from __future__ import annotations

import time

import pytest

from repro.api import simulate
from repro.sim.config import GPUConfig

PARAMS = {
    "ht": dict(n_threads=256, n_buckets=8, items_per_thread=1,
               block_dim=128),
    "nw1": dict(n_threads=256, n_cols=64, cell_work=4, block_dim=128),
}

REPS = 3

#: Autocheckpointing slowdown ceiling (<=10% over the plain run).
CHECKPOINT_CEILING = 1.10


def _best_wall(kernel, checkpoint_path=None, reps=REPS):
    config = GPUConfig.preset("fermi", scheduler="gto", bows="adaptive")
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        simulate(
            kernel, config=config, params=dict(PARAMS[kernel]),
            checkpoint_every=True if checkpoint_path else None,
            checkpoint_path=checkpoint_path,
        )
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("kernel", ["ht", "nw1"])
def test_default_epoch_checkpointing_stays_under_ceiling(kernel, tmp_path):
    plain = _best_wall(kernel)
    path = tmp_path / f"{kernel}.ckpt"
    checkpointed = _best_wall(kernel, checkpoint_path=path)
    ratio = checkpointed / plain
    assert ratio < CHECKPOINT_CEILING, (
        f"{kernel}: checkpoint_every=progress_epoch costs {ratio:.2f}x "
        f"(ceiling {CHECKPOINT_CEILING}x; plain {plain * 1e3:.1f}ms, "
        f"checkpointed {checkpointed * 1e3:.1f}ms)"
    )
