"""Perf smoke test: the fast engine must stay fast.

Wall-clock thresholds are machine-dependent, so the regression check is
a *ratio of ratios*: measure the fast/reference speedup on this machine
right now and compare it to the speedup recorded in the committed
``BENCH_hotloop.json`` (produced by ``python -m repro bench``).  Both
numbers divide out the machine's absolute speed; a drop of more than
30% means the hot loop itself regressed, not the hardware.

Only the ``ht`` entries are re-measured (the full matrix is the CLI's
job); geomean over baseline+BOWS with min-of-``reps`` wall times keeps
the check stable on noisy shared machines.

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/perf -q
"""

from __future__ import annotations

import math
import os

import pytest

from repro.bench import FULL_MATRIX, load_benchmark, run_benchmark

#: Committed benchmark record at the repository root.
BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))),
    "BENCH_hotloop.json",
)

#: Allowed speedup regression versus the committed record.
TOLERANCE = 0.30


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_fast_engine_speedup_has_not_regressed():
    committed = load_benchmark(BENCH_PATH)
    if committed is None:
        pytest.skip(f"no compatible benchmark record at {BENCH_PATH}")

    committed_ht = [e["speedup"] for e in committed["entries"]
                    if e["kernel"] == "ht"]
    assert committed_ht, "committed record has no ht entries"

    ht_matrix = tuple((k, p) for k, p in FULL_MATRIX if k == "ht")
    fresh = run_benchmark(reps=3, matrix=ht_matrix)
    fresh_ht = [e["speedup"] for e in fresh["entries"]]

    committed_speedup = _geomean(committed_ht)
    fresh_speedup = _geomean(fresh_ht)
    floor = committed_speedup * (1.0 - TOLERANCE)
    assert fresh_speedup >= floor, (
        f"fast-engine speedup regressed: geomean {fresh_speedup:.2f}x on "
        f"ht vs committed {committed_speedup:.2f}x "
        f"(floor with {TOLERANCE:.0%} tolerance: {floor:.2f}x)"
    )
