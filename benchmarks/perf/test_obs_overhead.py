"""Perf smoke test: observability must be cheap, and free when off.

Two bounds, both measured as wall-clock ratios on the same machine in
the same process (so absolute speed divides out):

* **Full collection** (event bus + interval sampler) must stay under
  2.5x the plain run.  The event sinks sit on cold decision branches
  (threshold crossings, back-off transitions, lock attempts), so even
  a lock-heavy BOWS workload should pay far less than that.
* The **disabled path** is guarded by ``test_hotloop_perf.py``:
  producers hold :func:`repro.obs.null_emitter` and the GPU loop's
  only addition is one ``sampler is not None`` test, so any real cost
  shows up as a fast-engine speedup regression against the committed
  ``BENCH_hotloop.json``.

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/perf -q
"""

from __future__ import annotations

import time

from repro.api import simulate
from repro.obs import ObsConfig
from repro.sim.config import GPUConfig

#: Lock-heavy enough that events actually stream (BOWS + DDOS on).
HT = dict(n_threads=256, n_buckets=8, items_per_thread=1, block_dim=128)

REPS = 3

#: Full collection (events + sampler) slowdown ceiling.
FULL_COLLECTION_CEILING = 2.5


def _best_wall(obs, reps=REPS):
    config = GPUConfig.preset("fermi", scheduler="gto", bows="adaptive")
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = simulate("ht", config=config, params=dict(HT), obs=obs)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_full_collection_stays_under_ceiling():
    plain, _ = _best_wall(None)
    collected, result = _best_wall(
        ObsConfig(event_capacity=500_000, sample_interval=500))
    assert result.obs.bus.total_events > 0, "collection must be exercised"
    assert result.obs.series.rows, "sampler must be exercised"
    ratio = collected / plain
    assert ratio < FULL_COLLECTION_CEILING, (
        f"event+sampler collection costs {ratio:.2f}x "
        f"(ceiling {FULL_COLLECTION_CEILING}x; plain {plain * 1e3:.1f}ms, "
        f"collected {collected * 1e3:.1f}ms)"
    )
