"""Ablations of the design choices DESIGN.md calls out.

Not paper artifacts — these isolate the contribution of each mechanism:

* **deprioritization vs throttling**: BOWS(0) keeps only the backed-off
  queue reordering; larger fixed delays add iteration throttling.
* **DDOS vs static annotations**: BOWS driven by runtime detection must
  match BOWS driven by the ground-truth ``!sib`` labels.
* **adaptive controllers**: the paper's Figure 5 rules vs the
  extremum-seeking (progress-rate hill-climbing) controller this
  reproduction defaults to (see ``repro.core.adaptive`` for why).
"""

from conftest import record, run_once

from repro.harness.experiments import ExperimentResult
from repro.harness.params import sync_params
from repro.api import simulate
from repro.harness.runner import make_config
from repro.kernels import build
from repro.sim.config import BOWSConfig


def _time(kernel, params, config):
    return simulate(build(kernel, **params), config=config)


def _ablation() -> ExperimentResult:
    params = sync_params("full")
    kernels = ("ht", "atm", "st")
    rows = []
    for kernel in kernels:
        p = params[kernel]
        base = _time(kernel, p, make_config("gto"))
        depri = _time(kernel, p, make_config("gto", bows=0))
        fixed = _time(kernel, p, make_config("gto", bows=2000))
        paper = _time(kernel, p, make_config(
            "gto", bows=BOWSConfig(adaptive=True, controller="paper")))
        hill = _time(kernel, p, make_config("gto", bows=True))
        static = _time(kernel, p, make_config("gto", bows=True,
                                              ddos=False))
        rows.append({
            "kernel": kernel,
            "gto": 1.0,
            "deprioritize_only": round(depri.cycles / base.cycles, 3),
            "fixed(2000)": round(fixed.cycles / base.cycles, 3),
            "adaptive_paper": round(paper.cycles / base.cycles, 3),
            "adaptive_hillclimb": round(hill.cycles / base.cycles, 3),
            "hillclimb_static_sibs": round(
                static.cycles / base.cycles, 3),
        })
    return ExperimentResult(
        "ablation",
        "BOWS component ablation (time normalized to GTO)",
        rows,
        notes="deprioritization alone is cheap and safe; throttling "
              "supplies most of the lock-kernel win; detection source "
              "(DDOS vs static !sib labels) should not matter",
    )


def test_ablation_bows(benchmark):
    result = run_once(benchmark, _ablation)
    record(result)
    rows = {r["kernel"]: r for r in result.rows}
    # Deprioritization alone never blows a kernel up.
    for kernel, row in rows.items():
        assert row["deprioritize_only"] < 1.3, kernel
    # On the spin-bound hashtable, throttling beats pure reordering.
    assert rows["ht"]["adaptive_hillclimb"] < 1.0
    # DDOS-driven BOWS tracks ground-truth-driven BOWS closely on the
    # lock kernels (detection is exact, timing may differ slightly).
    for kernel in ("ht", "atm"):
        a = rows[kernel]["adaptive_hillclimb"]
        b = rows[kernel]["hillclimb_static_sibs"]
        assert abs(a - b) / max(a, b) < 0.35, kernel
    # The hill-climbing controller is not worse than the paper's rules
    # on the merged wait/work loop (ST), where the Figure 5 trigger
    # over-throttles productive iterations.
    assert (rows["st"]["adaptive_hillclimb"]
            <= rows["st"]["adaptive_paper"] * 1.1)
