"""Figure 15: BOWS performance and energy on the GTX1080Ti-shaped machine."""

from conftest import record, run_once

from repro.harness.experiments import fig15


def test_fig15_bows_pascal(benchmark):
    result = run_once(benchmark, fig15, scale="full")
    record(result)
    headline = result.headline
    # Paper: speedups of 1.9x / 1.7x / 1.5x over LRR / GTO / CAWA on
    # Pascal; direction must hold at our scale for LRR/GTO (CAWA has a
    # documented wait-pipeline deviation, EXPERIMENTS.md deviation 4).
    for base in ("lrr", "gto"):
        assert headline[f"speedup_vs_{base}"] > 1.0, headline
    assert headline["speedup_vs_cawa"] > 0.6, headline
    # Paper (Section VI-D): with four schedulers per SM each arbitrates
    # among few warps, so the *baselines* are closer together on Pascal
    # than on Fermi for most kernels.
    rows = {r["kernel"]: r for r in result.rows}
    spreads = [
        max(r["lrr_time"], r["gto_time"], r["cawa_time"])
        / max(min(r["lrr_time"], r["gto_time"], r["cawa_time"]), 1e-9)
        for r in rows.values()
    ]
    assert min(spreads) < 1.2
