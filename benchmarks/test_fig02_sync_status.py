"""Figure 2: synchronization outcome distribution under LRR/GTO/CAWA."""

from conftest import record, run_once

from repro.harness.experiments import fig2


def test_fig2_sync_status(benchmark):
    result = run_once(benchmark, fig2, scale="full")
    record(result)
    by_key = {(r["kernel"], r["scheme"]): r for r in result.rows}
    # Paper: most lock-acquire failures are inter-warp.
    for (kernel, scheme), row in by_key.items():
        if row["inter_warp_fail"] or row["intra_warp_fail"]:
            assert row["inter_warp_fail"] >= row["intra_warp_fail"], (
                kernel, scheme,
            )
    # Lock-based kernels report lock outcomes; ST reports wait exits.
    assert by_key[("ht", "gto")]["lock_success"] > 0
    assert by_key[("st", "gto")]["wait_exit_fail"] > 0
    # The distribution depends on the scheduling policy: at least one
    # kernel shows a >5% swing in total attempts across policies.
    swings = []
    kernels = {k for k, _ in by_key}
    for kernel in kernels:
        totals = [
            by_key[(kernel, scheme)]["total_raw"]
            for scheme in ("lrr", "gto", "cawa")
        ]
        swings.append(max(totals) / max(min(totals), 1))
    assert max(swings) > 1.05
