"""Shared helpers for the table/figure regeneration benchmarks.

Every benchmark regenerates one paper artifact at ``full`` scale and
prints the resulting table (run with ``-s`` to see them inline; the
tables are also appended to ``benchmarks/results.txt``).

pytest-benchmark is used in single-shot mode (``pedantic`` with one
round): the interesting output is the regenerated table, and the
benchmark timing records how long the regeneration takes.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

import pytest

from repro.harness.experiments import ExperimentResult

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")

#: Cross-test cache so Figures 10-13 share one delay sweep.
_cache: Dict[str, object] = {}


def cached(key: str, compute: Callable[[], object]) -> object:
    if key not in _cache:
        _cache[key] = compute()
    return _cache[key]


def record(result: ExperimentResult) -> ExperimentResult:
    text = result.render()
    print()
    print(text)
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")
    return result


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    if os.path.exists(RESULTS_PATH):
        os.remove(RESULTS_PATH)
    yield


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs,
        rounds=1, iterations=1, warmup_rounds=0,
    )
