"""Shared helpers for the table/figure regeneration benchmarks.

Every benchmark regenerates one paper artifact at ``full`` scale and
prints the resulting table (run with ``-s`` to see them inline; the
tables are also written to ``benchmarks/results.txt``, truncated once
per pytest session so the file always reflects the latest run).

pytest-benchmark is used in single-shot mode (``pedantic`` with one
round): the interesting output is the regenerated table, and the
benchmark timing records how long the regeneration takes.

Simulations execute through :mod:`repro.lab` (and thence through the
:func:`repro.api.simulate` facade): a session-scoped fixture installs a
runner with a process pool (``REPRO_LAB_WORKERS``, default: CPU count)
and the shared on-disk result cache, so the Figures 10-13 delay sweep is
simulated once and every later benchmark — and every later *session*
with unchanged code — reuses the cached results.

Set ``REPRO_BENCH_ENGINE=reference`` (or ``fast``) to force every
benchmark simulation onto one engine — the A/B switch for chasing a
suspected fast-engine divergence.  The override disables the disk cache
for the session, so forced-engine results never land in cache entries
keyed for the specs' own engine choice.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict

import pytest

from repro.harness.experiments import ExperimentResult
from repro.lab import ResultCache, Runner, use_runner

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")

#: Cross-test cache so Figures 10-13 share one delay sweep.
_cache: Dict[str, object] = {}

#: Flipped by the first ``record`` of the session: the first write
#: truncates ``results.txt``, later ones append.
_results_truncated = False


def cached(key: str, compute: Callable[[], object]) -> object:
    if key not in _cache:
        _cache[key] = compute()
    return _cache[key]


def record(result: ExperimentResult) -> ExperimentResult:
    global _results_truncated
    text = result.render()
    print()
    print(text)
    mode = "a" if _results_truncated else "w"
    _results_truncated = True
    with open(RESULTS_PATH, mode, encoding="utf-8") as handle:
        handle.write(text + "\n\n")
    return result


def _execute_with_engine_override(spec):
    """Pool-worker entry forcing ``REPRO_BENCH_ENGINE`` onto every spec.

    Module-level so it pickles into process-pool workers; the workers
    inherit the environment variable.
    """
    from repro.lab.runner import execute_run

    engine = os.environ["REPRO_BENCH_ENGINE"]
    return execute_run(dataclasses.replace(spec, engine=engine))


@pytest.fixture(scope="session", autouse=True)
def _lab_runner():
    """Parallel, disk-cached execution for every benchmark simulation."""
    workers = int(os.environ.get("REPRO_LAB_WORKERS", "0"))
    if workers <= 0:
        workers = os.cpu_count() or 1
    if os.environ.get("REPRO_BENCH_ENGINE"):
        # Forced engine: bypass the cache (entries are keyed by the
        # spec's own engine field, which the override sidesteps).
        runner = Runner(workers=workers, cache=None,
                        run_fn=_execute_with_engine_override)
    else:
        runner = Runner(workers=workers, cache=ResultCache())
    with use_runner(runner):
        yield runner


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs,
        rounds=1, iterations=1, warmup_rounds=0,
    )
