"""Figure 1: fine-grained synchronization overheads (motivation).

Regenerates the hashtable contention sweep: GPU-vs-serial-CPU time
(1b), sync share of dynamic instructions (1c) and memory transactions
(1d), and single- vs multi-warp SIMD efficiency (1e).
"""

from conftest import record, run_once

from repro.harness.experiments import fig1


def test_fig1_motivation(benchmark):
    result = run_once(benchmark, fig1, scale="full")
    record(result)
    rows = {row["buckets"]: row for row in result.rows}
    high = rows[min(rows)]
    low = rows[max(rows)]
    # Paper: sync overhead dominates instructions and memory traffic at
    # high contention and falls as buckets grow.
    assert high["sync_instr_frac"] > 0.5
    assert high["sync_mem_frac"] > 0.4
    assert low["sync_instr_frac"] < high["sync_instr_frac"]
    # Paper: SIMD efficiency is high for a single warp and collapses
    # with many warps (inter-warp lock conflicts).
    assert high["simd_single_warp"] > high["simd_multi_warp"]
