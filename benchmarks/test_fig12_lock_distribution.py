"""Figure 12: synchronization outcome totals across delay limits."""

from conftest import cached, record, run_once

from repro.harness.experiments import fig12, run_delay_sweep


def test_fig12_lock_distribution(benchmark):
    sweep = run_once(
        benchmark,
        lambda: cached("delay_sweep", lambda: run_delay_sweep("full")),
    )
    result = fig12(sweep=sweep)
    record(result)
    rows = {r["kernel"]: r for r in result.rows}
    # Paper: BOWS sharply reduces failed lock acquires on the
    # lock-contended kernels (10.8x on HT vs GTO).
    for kernel in ("ht", "atm", "ds"):
        assert rows[kernel]["bows(5000)"] < rows[kernel]["gto"], kernel
    assert result.headline.get("ht_attempt_reduction_adaptive", 1.0) > 1.2
