"""Figure 10: execution time vs back-off delay limit.

Runs the GTO+BOWS delay sweep shared by Figures 10-13 (cached in
``conftest`` so the other figures reuse the same simulations).
"""

from conftest import cached, record, run_once

from repro.harness.experiments import fig10, run_delay_sweep


def test_fig10_delay_sweep(benchmark):
    sweep = run_once(
        benchmark,
        lambda: cached("delay_sweep", lambda: run_delay_sweep("full")),
    )
    result = fig10(sweep=sweep)
    record(result)
    rows = {r["kernel"]: r for r in result.rows}
    fixed_delays = (0, 500, 1000, 3000, 5000)
    # Paper: oversized fixed delays throttle kernels whose loop closes
    # on productive iterations (ST, NW degrade badly at 5000); the
    # adaptive limit escapes that cliff.
    for kernel, row in rows.items():
        worst = row["bows(5000)"]
        if worst > 1.5:
            assert row["bows(adaptive)"] < worst, kernel
            assert row["bows(adaptive)"] < 1.8, kernel
    # Paper: on the lock-contended kernels the adaptive limit tracks
    # (or beats) the best fixed choice.
    for kernel in ("ht", "atm", "ds"):
        fixed = [rows[kernel][f"bows({d})"] for d in fixed_delays]
        assert rows[kernel]["bows(adaptive)"] <= min(fixed) * 1.35, kernel
    # TSP stays roughly flat under the adaptive limit (its sync share
    # is tiny; note our TSP is *more* lock-bound than the paper's, so
    # large fixed delays help here instead of hurting — EXPERIMENTS.md).
    assert 0.7 <= rows["tsp"]["bows(adaptive)"] <= 1.3
