"""Figure 14: overheads from MODULO-hash false spin detections."""

from conftest import record, run_once

from repro.harness.experiments import fig14


def test_fig14_detection_errors(benchmark):
    result = run_once(benchmark, fig14, scale="full")
    record(result)
    rows = {r["kernel"]: r for r in result.rows}
    # Paper: MS and HL have power-of-two-stride loops that MODULO
    # hashing falsely flags, so large back-off delays slow them down.
    assert rows["ms"]["bows(5000)"] > 1.05
    assert rows["hl"]["bows(5000)"] > 1.05
    # Paper: kernels without such loops are unaffected even by MODULO.
    assert rows["kmeans"]["bows(5000)"] < 1.05
    assert rows["vecadd"]["bows(5000)"] < 1.05
    # Paper: with XOR hashing there are no false detections at all, so
    # sync-free kernels match the baseline.
    for kernel, row in rows.items():
        assert row["bows(5000)+xor"] < 1.05, kernel
