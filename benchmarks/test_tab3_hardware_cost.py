"""Table III: per-SM storage cost of DDOS + BOWS."""

from conftest import record, run_once

from repro.harness.experiments import tab3


def test_tab3_hardware_cost(benchmark):
    result = run_once(benchmark, tab3)
    record(result)
    rows = {r["component"]: r for r in result.rows}
    # Paper-exact components.
    assert rows["SIB-PT"]["bits"] == 560
    assert rows["History registers"]["bits"] == 9216
    assert rows["Pending delay counters"]["bits"] == 672
    # Total storage stays under 1.5 KB per SM.
    assert result.headline["total_bytes"] < 1536
