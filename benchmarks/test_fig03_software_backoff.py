"""Figure 3: software-only back-off vs hardware back-off (BOWS)."""

from conftest import record, run_once

from repro.harness.experiments import fig3


def test_fig3_software_backoff(benchmark):
    result = run_once(benchmark, fig3, scale="full")
    record(result)
    rows = {row["scheme"]: row for row in result.rows}
    baseline = rows["no delay"]
    sw = rows["sw delay(1000)"]
    hw = rows["BOWS (hardware)"]
    # Paper: the delay loop itself consumes issue slots — its dynamic
    # instruction cost is enormous (every polled clock() is an issue).
    assert sw["warp_instructions"] > 2 * baseline["warp_instructions"]
    # BOWS delivers back-off while *removing* instructions instead.
    assert hw["warp_instructions"] < baseline["warp_instructions"]
    assert hw["warp_instructions"] < 0.5 * sw["warp_instructions"]
    # Hardware back-off dominates software back-off on energy.
    assert hw["normalized_energy"] < sw["normalized_energy"]
    # And is at least as fast.
    assert hw["normalized_time"] <= sw["normalized_time"] * 1.1
